//! Trace interchange: CSV export/import of access records.
//!
//! Lets a deployment feed real telemetry (e.g. parsed EOS logs) into the
//! pipeline, and lets simulated traces be inspected with standard tools.
//! The column set is exactly the record schema: `access_number, fid, fsid,
//! rb, wb, ots, otms, cts, ctms`.

use std::io::{BufRead, Write};

use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

/// Errors raised while reading a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number (including the header).
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// The CSV header line.
pub const CSV_HEADER: &str = "access_number,fid,fsid,rb,wb,ots,otms,cts,ctms";

/// Writes records as CSV (with header) to any writer.
///
/// # Errors
///
/// Returns an I/O error if writing fails.
pub fn write_csv<W: Write>(mut writer: W, records: &[AccessRecord]) -> Result<(), TraceIoError> {
    writeln!(writer, "{CSV_HEADER}")?;
    for r in records {
        writeln!(
            writer,
            "{},{},{},{},{},{},{},{},{}",
            r.access_number, r.fid.0, r.fsid.0, r.rb, r.wb, r.ots, r.otms, r.cts, r.ctms
        )?;
    }
    Ok(())
}

/// Reads records from CSV (expects the [`CSV_HEADER`] header) from any
/// buffered reader.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on a bad header, wrong column count, or
/// unparsable field, identifying the offending line.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Vec<AccessRecord>, TraceIoError> {
    let mut lines = reader.lines().enumerate();
    match lines.next() {
        Some((_, Ok(header))) if header.trim() == CSV_HEADER => {}
        Some((_, Ok(header))) => {
            return Err(TraceIoError::Parse {
                line: 1,
                message: format!("unexpected header {header:?}"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => return Ok(Vec::new()),
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 9 {
            return Err(TraceIoError::Parse {
                line: idx + 1,
                message: format!("expected 9 columns, found {}", fields.len()),
            });
        }
        let parse_u64 = |i: usize| -> Result<u64, TraceIoError> {
            fields[i].trim().parse().map_err(|_| TraceIoError::Parse {
                line: idx + 1,
                message: format!("column {} ({:?}) is not an integer", i + 1, fields[i]),
            })
        };
        records.push(AccessRecord {
            access_number: parse_u64(0)?,
            fid: FileId(parse_u64(1)?),
            fsid: DeviceId(parse_u64(2)? as u32),
            rb: parse_u64(3)?,
            wb: parse_u64(4)?,
            ots: parse_u64(5)?,
            otms: parse_u64(6)? as u16,
            cts: parse_u64(7)?,
            ctms: parse_u64(8)? as u16,
        });
    }
    Ok(records)
}

/// Writes records to a CSV file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written.
pub fn save_csv(
    path: impl AsRef<std::path::Path>,
    records: &[AccessRecord],
) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    write_csv(std::io::BufWriter::new(file), records)
}

/// Reads records from a CSV file.
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load_csv(path: impl AsRef<std::path::Path>) -> Result<Vec<AccessRecord>, TraceIoError> {
    let file = std::fs::File::open(path)?;
    read_csv(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<AccessRecord> {
        (0..n)
            .map(|i| AccessRecord {
                access_number: i,
                fid: FileId(i % 5),
                fsid: DeviceId((i % 3) as u32),
                rb: 1000 * i,
                wb: i,
                ots: i * 2,
                otms: (i % 1000) as u16,
                cts: i * 2 + 1,
                ctms: ((i * 7) % 1000) as u16,
            })
            .collect()
    }

    #[test]
    fn csv_round_trip() {
        let records = sample(20);
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let restored = read_csv(&buf[..]).unwrap();
        assert_eq!(restored, records);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[]).unwrap();
        assert!(read_csv(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(read_csv(&b""[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_header_is_reported() {
        let err = read_csv(&b"nope,nope\n1,2,3\n"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn wrong_column_count_is_reported_with_line() {
        let input = format!("{CSV_HEADER}\n1,2,3\n");
        let err = read_csv(input.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("9 columns"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn non_integer_field_is_reported() {
        let input = format!("{CSV_HEADER}\n1,2,3,x,5,6,7,8,9\n");
        let err = read_csv(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not an integer"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = format!("{CSV_HEADER}\n\n0,1,2,3,4,5,6,7,8\n\n");
        let records = read_csv(input.as_bytes()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fid, FileId(1));
    }

    #[test]
    fn file_round_trip() {
        let records = sample(5);
        let dir = std::env::temp_dir().join("geomancy_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        save_csv(&path, &records).unwrap();
        assert_eq!(load_csv(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }
}
