//! # geomancy-trace
//!
//! Workload and trace generation for the Geomancy reproduction (ISPASS
//! 2020), plus the statistics used in the paper's feature-discovery study.
//!
//! - [`belle2`] — the BELLE II Monte-Carlo workload the live experiments
//!   replay: 24 ROOT files (583 KB–1.1 GB), each read 10–20 times in
//!   succession, in looping sequential scans.
//! - [`eos`] — a synthetic CERN EOS access log: 32 fields per record with a
//!   planted correlation structure matching Figure 4.
//! - [`stats`] — Pearson correlation, moving / cumulative averages.
//! - [`features`] — the six selected features, path→numeric encoding, and
//!   min-max normalization of §V-E.
//!
//! # Examples
//!
//! ```
//! use geomancy_trace::belle2::Belle2Workload;
//! use geomancy_trace::eos::{correlation_table, EosTraceGenerator};
//!
//! let mut workload = Belle2Workload::new(7);
//! let run = workload.next_run();
//! assert!(run.len() >= 24 * 10);
//!
//! let mut eos = EosTraceGenerator::new(7);
//! let trace = eos.generate(1000);
//! let correlations = correlation_table(&trace);
//! assert_eq!(correlations.len(), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod belle2;
pub mod clients;
pub mod eos;
pub mod features;
pub mod io;
pub mod stats;

pub use belle2::{Belle2Workload, WorkloadFile, WorkloadOp};
pub use clients::{ClientFleet, ClientOp};
pub use eos::{correlation_table, EosRecord, EosTraceGenerator};
pub use features::{MinMaxNormalizer, PathEncoder, ScalarNormalizer, FEATURE_NAMES, Z};
pub use io::{load_csv, read_csv, save_csv, write_csv, TraceIoError};
