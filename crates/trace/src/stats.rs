//! Statistics used for feature discovery and smoothing: Pearson correlation
//! (Figure 4), moving average (§V-E), and summary statistics.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `0.0` when either series is constant (correlation undefined),
/// matching how the paper treats uninformative features.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(!xs.is_empty(), "correlation of empty series");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Trailing moving average with the given window ("we remove smaller
/// variations from data in the ReplayDB by applying a moving average").
///
/// Output has the same length as the input; the first `window - 1` entries
/// average the prefix seen so far.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be non-zero");
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        sum += x;
        if i >= window {
            sum -= xs[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

/// Cumulative (running) average — the alternative smoother the paper rejects
/// because it "loses short term fluctuations".
pub fn cumulative_average(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        sum += x;
        out.push(sum / (i + 1) as f64);
    }
    out
}

/// Mean and population standard deviation as a pair (Table IV cells).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        // Symmetric pattern: y identical for low and high x.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 2.0, 1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let smoothed = moving_average(&xs, 2);
        assert_eq!(smoothed.len(), xs.len());
        assert_eq!(smoothed[0], 0.0);
        for &v in &smoothed[1..] {
            assert_eq!(v, 5.0);
        }
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let xs = [3.0, 1.0, 4.0];
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
    }

    #[test]
    fn moving_average_prefix_before_window_full() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        let out = moving_average(&xs, 4);
        assert_eq!(out, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn cumulative_average_converges_to_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let out = cumulative_average(&xs);
        assert_eq!(out, vec![1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn cumulative_loses_short_term_fluctuation_vs_moving() {
        // A late spike: moving average with a short window reacts more than
        // the cumulative average — the paper's reason for preferring it.
        let mut xs = vec![1.0; 50];
        xs.push(10.0);
        let ma = moving_average(&xs, 5);
        let ca = cumulative_average(&xs);
        let spike_idx = xs.len() - 1;
        assert!(ma[spike_idx] > ca[spike_idx] * 2.0);
    }
}
