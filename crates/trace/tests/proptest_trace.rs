//! Property-based tests of statistics, feature encoding, and generators.

use geomancy_trace::belle2::Belle2Workload;
use geomancy_trace::eos::EosTraceGenerator;
use geomancy_trace::features::{MinMaxNormalizer, PathEncoder, ScalarNormalizer};
use geomancy_trace::stats::{cumulative_average, mean, moving_average, pearson, std_dev};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pearson_is_in_unit_interval(
        pairs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 2..50),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
    }

    #[test]
    fn pearson_is_symmetric(
        pairs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..40),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-12);
    }

    #[test]
    fn pearson_self_correlation_is_one(
        xs in proptest::collection::vec(-100.0..100.0f64, 3..40),
    ) {
        prop_assume!(std_dev(&xs) > 1e-6);
        prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_stays_within_series_bounds(
        xs in proptest::collection::vec(-100.0..100.0f64, 1..60),
        window in 1usize..10,
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&xs, window) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn moving_average_of_constant_is_constant(
        c in -50.0..50.0f64,
        n in 1usize..40,
        window in 1usize..10,
    ) {
        let xs = vec![c; n];
        for v in moving_average(&xs, window) {
            prop_assert!((v - c).abs() < 1e-9);
        }
    }

    #[test]
    fn cumulative_average_ends_at_mean(
        xs in proptest::collection::vec(-100.0..100.0f64, 1..60),
    ) {
        let ca = cumulative_average(&xs);
        prop_assert!((ca.last().unwrap() - mean(&xs)).abs() < 1e-9);
    }

    #[test]
    fn minmax_output_in_unit_interval_for_fitted_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1000.0..1000.0f64, 3),
            2..30,
        ),
    ) {
        let norm = MinMaxNormalizer::fit(rows.iter().map(|r| r.as_slice()));
        for row in &rows {
            let mut r = row.clone();
            norm.normalize(&mut r);
            for v in r {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn scalar_normalizer_round_trips(
        values in proptest::collection::vec(0.0..1e9f64, 2..30),
        probe in 0.0..1e9f64,
    ) {
        let n = ScalarNormalizer::fit(&values);
        let range = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(range > 1e-6);
        let back = n.denormalize(n.normalize(probe));
        prop_assert!((back - probe).abs() < 1e-6 * probe.abs().max(1.0));
    }

    #[test]
    fn scale_only_normalizer_preserves_ratios(
        values in proptest::collection::vec(1.0..1e9f64, 2..30),
    ) {
        let n = ScalarNormalizer::fit_scale_only(&values);
        let a = values[0];
        let b = values[1];
        prop_assume!(n.normalize(b) > 1e-12);
        let ratio_before = a / b;
        let ratio_after = n.normalize(a) / n.normalize(b);
        prop_assert!((ratio_before - ratio_after).abs() < 1e-6 * ratio_before.abs());
    }

    #[test]
    fn path_encoder_is_injective_on_distinct_paths(
        names in proptest::collection::btree_set("[a-z]{1,8}", 2..20),
    ) {
        let mut enc = PathEncoder::new();
        let ids: Vec<f64> = names.iter().map(|n| enc.encode(&format!("dir/{n}"))).collect();
        let unique: std::collections::BTreeSet<u64> = ids.iter().map(|&x| x as u64).collect();
        prop_assert_eq!(unique.len(), names.len(), "collision in path encoding");
    }

    #[test]
    fn belle2_runs_have_expected_size_bounds(seed in 0u64..500) {
        let mut w = Belle2Workload::new(seed);
        let run = w.next_run();
        // 24 files x 10..=20 accesses each.
        prop_assert!(run.len() >= 240 && run.len() <= 480);
    }

    #[test]
    fn eos_generator_records_are_consistent(seed in 0u64..200) {
        let mut gen = EosTraceGenerator::new(seed);
        for rec in gen.generate(50) {
            prop_assert!(rec.otms < 1000 && rec.ctms < 1000);
            prop_assert!(rec.cts >= rec.ots);
            prop_assert!(rec.throughput() > 0.0);
            prop_assert_eq!(rec.csize, rec.rb + rec.wb);
        }
    }
}
