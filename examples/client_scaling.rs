//! Client scaling — the paper's closing future work ("how our workload
//! scales when the system and the number of clients increases") plus the
//! §X gap scheduler: as more clients share the six mounts, per-access
//! throughput degrades — while each file's idle windows *lengthen*
//! (every client's scan takes longer to come back around), giving the gap
//! scheduler more room to migrate.
//!
//! Run with `cargo run --example client_scaling --release`.

use std::error::Error;

use geomancy::core::{GapScheduler, ScheduledMove};
use geomancy::replaydb::ReplayDb;
use geomancy::sim::bluesky::{bluesky_system, Mount};
use geomancy::sim::cluster::FileMeta;
use geomancy::sim::record::DeviceId;
use geomancy::trace::clients::ClientFleet;
use geomancy::trace::stats::mean_std;

fn run_fleet(clients: usize) -> Result<(f64, usize, usize), Box<dyn Error>> {
    let mut system = bluesky_system(23);
    let mut fleet = ClientFleet::new(23, clients, 6);
    // Register every client's files, spread across mounts.
    let mut idx = 0usize;
    for files in fleet.files() {
        for f in files {
            system.add_file(
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
                DeviceId((idx % 6) as u32),
            )?;
            idx += 1;
        }
    }
    // Run four interleaved rounds, recording telemetry.
    let mut db = ReplayDb::new();
    let mut throughputs = Vec::new();
    for _ in 0..4 {
        for client_op in fleet.next_round() {
            let record = if client_op.op.write {
                system.write_file(client_op.op.fid, client_op.op.bytes)?
            } else {
                system.read_file(client_op.op.fid, client_op.op.bytes)?
            };
            db.insert(system.clock().now_micros(), record);
            throughputs.push(record.throughput());
        }
        system.idle(3.0);
    }
    let (mean, _) = mean_std(&throughputs);

    // How many planned migrations would fit the predicted access gaps?
    let scheduler = GapScheduler::default();
    let predictions = scheduler.predict_gaps(&db, 50_000);
    let moves: Vec<ScheduledMove> = predictions
        .keys()
        .map(|&fid| ScheduledMove {
            fid,
            to: Mount::File0.device_id(),
            // A ~1 GB transfer over a contended link: tens of seconds.
            estimated_secs: 20.0,
        })
        .collect();
    let now = system.clock().now_secs();
    let (ready, deferred) = scheduler.schedule(&moves, &predictions, now);
    Ok((mean, ready.len(), deferred.len()))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("clients | per-access throughput | migrations schedulable into gaps");
    for clients in [1usize, 2, 4, 8] {
        let (mean, ready, deferred) = run_fleet(clients)?;
        println!(
            "  {clients:>5} | {:>8.2} GB/s         | {ready:>3} ready, {deferred:>3} deferred",
            mean / 1e9,
        );
    }
    println!(
        "\nMore clients → more contention per mount (lower per-access throughput),\n\
         but each file rests longer between scans, so more migrations fit the\n\
         predicted gaps — the trade-off the paper's future-work gap model is for."
    );
    Ok(())
}
