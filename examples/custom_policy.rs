//! Extending Geomancy: implement your own placement policy and race it
//! against the built-ins through the experiment driver.
//!
//! The example policy is a *capacity-weighted* spread: faster devices get
//! proportionally more files, recomputed at every decision point — a
//! middle ground between the even spread and the learned layouts.
//!
//! Run with `cargo run --example custom_policy --release`.

use geomancy::core::experiment::{run_policy_experiment, ExperimentConfig};
use geomancy::core::policy::{
    rank_devices_by_throughput, Lfu, PlacementPolicy, PolicyContext, SpreadStatic,
};
use geomancy::sim::cluster::Layout;

/// Assigns files to devices proportionally to each device's observed mean
/// throughput: a device twice as fast gets twice the files.
#[derive(Debug, Default)]
struct ThroughputWeightedSpread;

impl PlacementPolicy for ThroughputWeightedSpread {
    fn name(&self) -> String {
        "Weighted spread".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        // Observed mean throughput per device (fall back to uniform).
        let weights: Vec<f64> = ctx
            .devices
            .iter()
            .map(|&d| {
                ctx.db
                    .mean_device_throughput(d, ctx.lookback)
                    .unwrap_or(1.0)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Quota per device, largest-remainder rounded.
        let n_files = ctx.files.len();
        let mut quotas: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n_files as f64).floor() as usize)
            .collect();
        let mut leftover = n_files - quotas.iter().sum::<usize>();
        // Hand leftovers to the fastest devices.
        let ranked = rank_devices_by_throughput(ctx.db, ctx.devices, ctx.lookback);
        for device in &ranked {
            if leftover == 0 {
                break;
            }
            let idx = ctx
                .devices
                .iter()
                .position(|d| d == device)
                .expect("ranked ⊆ devices");
            quotas[idx] += 1;
            leftover -= 1;
        }
        // Fill quotas in file order, fastest devices first.
        let mut layout = Layout::new();
        let mut files = ctx.files.keys().copied();
        for device in ranked {
            let idx = ctx
                .devices
                .iter()
                .position(|d| *d == device)
                .expect("ranked ⊆ devices");
            for _ in 0..quotas[idx] {
                if let Some(fid) = files.next() {
                    layout.insert(fid, device);
                }
            }
        }
        for fid in files {
            layout.insert(fid, *ctx.devices.last().expect("non-empty devices"));
        }
        Some(layout)
    }
}

fn main() {
    let config = ExperimentConfig {
        seed: 5,
        warmup_accesses: 2_000,
        runs: 12,
        move_every_runs: 3,
        lookback: 2_000,
        transfer_budget: None,
        file_count: 24,
        inter_run_gap_secs: 3.0,
        early_retrain_on_drift: false,
    };
    println!("racing three policies over {} runs…", config.runs);
    let mut contenders: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(SpreadStatic::new()),
        Box::new(Lfu),
        Box::new(ThroughputWeightedSpread),
    ];
    let mut best: Option<(String, f64)> = None;
    for policy in &mut contenders {
        let result = run_policy_experiment(policy.as_mut(), &config);
        println!(
            "  {:<16} {:.2} ± {:.2} GB/s over {} accesses",
            result.policy,
            result.avg_throughput / 1e9,
            result.std_throughput / 1e9,
            result.series.len()
        );
        if best
            .as_ref()
            .map(|(_, tp)| result.avg_throughput > *tp)
            .unwrap_or(true)
        {
            best = Some((result.policy.clone(), result.avg_throughput));
        }
    }
    let (winner, tp) = best.expect("at least one policy ran");
    println!("\nwinner: {winner} at {:.2} GB/s", tp / 1e9);
}
