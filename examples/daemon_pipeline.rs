//! The full §V-A architecture wired together: per-device monitoring agents
//! batch telemetry to the Interface Daemon on a separate thread, the DRL
//! engine trains from a daemon snapshot, and a control agent applies the
//! checked layout — the same component diagram as the paper's Figure 2.
//!
//! Run with `cargo run --example daemon_pipeline --release`.

use std::error::Error;

use geomancy::core::daemon::InterfaceDaemon;
use geomancy::core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy::core::ActionChecker;
use geomancy::replaydb::ReplayDb;
use geomancy::sim::agents::{ControlAgent, MonitoringAgent};
use geomancy::sim::bluesky::bluesky_system;
use geomancy::sim::cluster::{FileMeta, Layout};
use geomancy::sim::record::DeviceId;
use geomancy::trace::belle2::Belle2Workload;

fn main() -> Result<(), Box<dyn Error>> {
    // Target system + workload.
    let mut system = bluesky_system(13);
    let mut workload = Belle2Workload::new(13);
    for (i, f) in workload.files().iter().enumerate() {
        system.add_file(
            f.fid,
            FileMeta {
                size: f.size,
                path: f.path.clone(),
            },
            DeviceId((i % 6) as u32),
        )?;
    }

    // One monitoring agent per storage device, batching 32 records at a
    // time before shipping them to the daemon.
    let mut monitors: Vec<MonitoringAgent> = system
        .devices()
        .iter()
        .map(|d| MonitoringAgent::new(d.id(), 32))
        .collect();

    // The Interface Daemon owns the ReplayDB on its own thread.
    let daemon = InterfaceDaemon::spawn(ReplayDb::new());
    let client = daemon.client();

    // Drive the workload; agents observe and forward batches. The layout
    // shuffles between runs so the telemetry has location diversity.
    use rand::{Rng, SeedableRng};
    let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(13);
    for _ in 0..12 {
        for op in workload.next_run() {
            let record = if op.write {
                system.write_file(op.fid, op.bytes)?
            } else {
                system.read_file(op.fid, op.bytes)?
            };
            for agent in &mut monitors {
                if let Some(batch) = agent.observe(&record) {
                    client.store_batch(system.clock().now_micros(), batch)?;
                }
            }
        }
        system.idle(4.0);
        let shuffled: Layout = system
            .files()
            .keys()
            .map(|&fid| (fid, DeviceId(shuffle_rng.gen_range(0..6))))
            .collect();
        let _ = system.apply_layout(&shuffled);
    }
    // Flush partial batches.
    for agent in &mut monitors {
        let rest = agent.drain();
        if !rest.is_empty() {
            client.store_batch(system.clock().now_micros(), rest)?;
        }
    }
    println!(
        "daemon ingested {} records from {} agents",
        client.len()?,
        monitors.len()
    );
    for agent in &monitors {
        let name = system.device(agent.device())?.name().to_string();
        println!(
            "  agent on {name:>7}: {} records observed",
            agent.total_observed()
        );
    }

    // DRL engine trains from a daemon snapshot, the Action Checker
    // validates, the control agent moves the data.
    let snapshot = client.snapshot()?;
    let mut engine = DrlEngine::new(DrlConfig {
        train_window: 800,
        epochs: 40,
        smoothing_window: 8,
        seed: 13,
        ..DrlConfig::default()
    });
    let outcome = engine.retrain(&snapshot).expect("enough telemetry");
    println!(
        "\nengine retrained on {} samples in {:.2?} (validation error {})",
        outcome.samples, outcome.training_time, outcome.validation_error
    );

    let mut checker = ActionChecker::new(13);
    let (now_secs, now_ms) = system.clock().now_secs_ms();
    let online = system.online_devices();
    let mut layout = Layout::new();
    for f in workload.files() {
        let ranked = engine.rank_locations(
            &PlacementQuery {
                fid: f.fid,
                read_bytes: f.size,
                write_bytes: 0,
                now_secs,
                now_ms,
            },
            &online,
        );
        let action = checker.check(&ranked, |d| {
            system
                .device(d)
                .map(|dev| dev.is_online() && dev.has_capacity_for(f.size))
                .unwrap_or(false)
        });
        layout.insert(f.fid, action.device);
    }
    let control = ControlAgent::new(Some(5_000_000_000)); // 5 GB budget/round
    let (moved, errors) = control.apply(&mut system, &layout);
    println!(
        "control agent moved {} files within budget ({} errors); {} checker decisions, {} random",
        moved.len(),
        errors.len(),
        checker.decisions(),
        checker.explorations(),
    );

    let db = daemon.shutdown();
    println!(
        "daemon shut down with {} records persisted in memory",
        db.len()
    );
    Ok(())
}
