//! The paper's offline study in miniature: generate a CERN EOS-style access
//! log, discover which features correlate with throughput (Figure 4), and
//! train a throughput model on the trace (the EOS half of §V-D/§V-G).
//!
//! Run with `cargo run --example eos_trace_analysis --release`.

use std::error::Error;

use geomancy::core::dataset::forecasting_dataset;
use geomancy::core::models::{build_model, ModelId};
use geomancy::nn::init::seeded_rng;
use geomancy::nn::loss::Loss;
use geomancy::nn::optimizer::Sgd;
use geomancy::nn::training::{train, DataSplit, TrainConfig};
use geomancy::sim::record::{AccessRecord, DeviceId, FileId};
use geomancy::trace::eos::{correlation_table, EosTraceGenerator};
use geomancy::trace::features::Z;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Generate a synthetic EOS trace (32 fields per record).
    let mut generator = EosTraceGenerator::new(2024);
    let records = generator.generate(8_000);
    println!("generated {} EOS-style records", records.len());

    // 2. Feature discovery: correlation against throughput.
    let mut correlations = correlation_table(&records);
    correlations.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nstrongest positive correlations:");
    for (name, corr) in correlations.iter().take(5) {
        println!("  {name:>8}: {corr:+.3}");
    }
    println!("strongest negative correlations:");
    for (name, corr) in correlations.iter().rev().take(5) {
        println!("  {name:>8}: {corr:+.3}");
    }

    // 3. Convert the selected six features into the training schema and fit
    //    the paper's chosen model (model 1).
    let access_records: Vec<AccessRecord> = records
        .iter()
        .enumerate()
        .map(|(i, r)| AccessRecord {
            access_number: i as u64,
            fid: FileId(r.fid),
            fsid: DeviceId(r.fsid),
            rb: r.rb,
            wb: r.wb,
            ots: r.ots,
            otms: r.otms,
            cts: r.cts,
            ctms: r.ctms,
        })
        .collect();
    let dataset = forecasting_dataset(&access_records, 1, 16, 0);
    let split = DataSplit::split_60_20_20(dataset.inputs.clone(), dataset.targets.clone());
    let mut rng = seeded_rng(1);
    let mut net = build_model(ModelId::new(1), Z, 8, &mut rng);
    println!("\ntraining model 1 ({}) …", net.describe());
    let mut opt = Sgd::new(0.05);
    let report = train(
        &mut net,
        &mut opt,
        &split,
        &TrainConfig {
            epochs: 100,
            batch_size: 64,
            loss: Loss::MeanSquaredError,
            patience: None,
        },
    );
    println!(
        "test error {} over {} samples ({} epochs in {:.2}s, prediction in {:.2} ms)",
        report.error_cell(),
        split.test.0.rows(),
        report.epochs_run,
        report.training_time.as_secs_f64(),
        report.prediction_time.as_secs_f64() * 1e3,
    );
    println!(
        "accuracy: {:.1} % — this modeling success on EOS-style traces is what\n\
         justified deploying the same architecture against the live system.",
        report.test_error.accuracy()
    );
    Ok(())
}
