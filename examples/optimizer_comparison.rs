//! The paper's optimizer choice, §V-G: "All models … use standard gradient
//! descent as an optimization function. We tested out the Adam optimizer
//! but it ended up giving us a higher mean and standard deviation of the
//! absolute relative error."
//!
//! This example reruns that comparison: model 1 on live-system telemetry,
//! trained once with SGD and once with Adam under identical budgets.
//!
//! Run with `cargo run --example optimizer_comparison --release`.

use std::error::Error;

use geomancy::core::dataset::forecasting_dataset;
use geomancy::core::models::{build_model, ModelId};
use geomancy::nn::init::seeded_rng;
use geomancy::nn::loss::Loss;
use geomancy::nn::optimizer::{Adam, Optimizer, Sgd};
use geomancy::nn::training::{train, DataSplit, TrainConfig};
use geomancy::sim::bluesky::bluesky_system;
use geomancy::sim::cluster::FileMeta;
use geomancy::sim::record::{AccessRecord, DeviceId};
use geomancy::trace::features::Z;

/// Gathers one mount's record series (the paper's study is per mount; a
/// merged multi-mount stream alternates between throughput regimes every
/// few records and defeats every optimizer).
fn gather_telemetry(n: usize, mount: DeviceId) -> Vec<AccessRecord> {
    use geomancy::trace::belle2::Belle2Workload;
    let mut system = bluesky_system(17);
    let mut workload = Belle2Workload::new(17);
    for (i, f) in workload.files().iter().enumerate() {
        system
            .add_file(
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
                DeviceId((i % 6) as u32),
            )
            .unwrap();
    }
    let mut records = Vec::new();
    while records.len() < n {
        for op in workload.next_run() {
            let record = system.read_file(op.fid, op.bytes).unwrap();
            if record.fsid == mount {
                records.push(record);
            }
            if records.len() >= n {
                break;
            }
        }
        system.idle(3.0);
    }
    records
}

fn run_with(optimizer: &mut dyn Optimizer, split: &DataSplit, seed: u64) -> (String, f64, f64) {
    let mut rng = seeded_rng(seed);
    let mut net = build_model(ModelId::new(1), Z, 8, &mut rng);
    let report = train(
        &mut net,
        optimizer,
        split,
        &TrainConfig {
            epochs: 120,
            batch_size: 64,
            loss: Loss::MeanSquaredError,
            patience: None,
        },
    );
    (
        report.error_cell(),
        report.test_error.mean,
        report.test_error.std_dev,
    )
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("gathering telemetry from the var mount…");
    let records = gather_telemetry(2_000, DeviceId(1));
    let ds = forecasting_dataset(&records, 1, 4, 0);
    let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());

    // Average over a few seeds so the comparison is not one lucky init.
    let mut sgd_means = Vec::new();
    let mut adam_means = Vec::new();
    println!("\nmodel 1, 120 epochs, identical data and inits:");
    for seed in [1u64, 2, 3] {
        let mut sgd = Sgd::new(0.05);
        let (cell, mean, _) = run_with(&mut sgd, &split, seed);
        println!("  seed {seed}  SGD : {cell}");
        sgd_means.push(mean);

        let mut adam = Adam::new(0.001);
        let (cell, mean, _) = run_with(&mut adam, &split, seed);
        println!("  seed {seed}  Adam: {cell}");
        adam_means.push(mean);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean error across seeds — SGD: {:.1} %, Adam: {:.1} %",
        avg(&sgd_means),
        avg(&adam_means)
    );
    println!(
        "paper's finding: Adam gave \"a higher mean and standard deviation of the\n\
         absolute relative error\" on their data; the gap is data-dependent, so\n\
         rerun this on your own telemetry before picking."
    );
    Ok(())
}
