//! Quickstart: stand up the simulated Bluesky system, gather telemetry from
//! the BELLE II workload, train Geomancy's DRL engine, and let it move data.
//!
//! Run with `cargo run --example quickstart --release`.

use std::collections::BTreeMap;
use std::error::Error;

use geomancy_core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy_core::policy::{GeomancyDynamic, PlacementPolicy, PolicyContext};
use geomancy_replaydb::ReplayDb;
use geomancy_sim::agents::ControlAgent;
use geomancy_sim::bluesky::{bluesky_system, Mount};
use geomancy_sim::cluster::FileMeta;
use geomancy_sim::record::{DeviceId, FileId};
use geomancy_trace::belle2::Belle2Workload;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The target system: six Bluesky mounts with external traffic.
    let mut system = bluesky_system(7);
    println!("target system: {} mounts", system.devices().len());
    for device in system.devices() {
        println!(
            "  {:>7}: {:>5.2} GB/s read, {:>5.2} GB/s write",
            device.name(),
            device.spec().read_bandwidth / 1e9,
            device.spec().write_bandwidth / 1e9,
        );
    }

    // 2. The workload: 24 ROOT files spread evenly across the mounts.
    let mut workload = Belle2Workload::new(7);
    for (i, file) in workload.files().iter().enumerate() {
        system.add_file(
            file.fid,
            FileMeta {
                size: file.size,
                path: file.path.clone(),
            },
            DeviceId((i % 6) as u32),
        )?;
    }

    // 3. Gather telemetry into the ReplayDB (the warm-up phase). The layout
    //    is shuffled between runs — without location diversity the model
    //    cannot separate "this file is slow" from "this mount is slow"
    //    (the paper trains Geomancy static on dynamic-random telemetry for
    //    the same reason).
    use rand::{Rng, SeedableRng};
    let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut db = ReplayDb::new();
    while db.len() < 4_000 {
        for op in workload.next_run() {
            let record = if op.write {
                system.write_file(op.fid, op.bytes)?
            } else {
                system.read_file(op.fid, op.bytes)?
            };
            db.insert(system.clock().now_micros(), record);
        }
        system.idle(5.0);
        let shuffled: geomancy::sim::cluster::Layout = system
            .files()
            .keys()
            .map(|&fid| (fid, DeviceId(shuffle_rng.gen_range(0..6))))
            .collect();
        let _ = system.apply_layout(&shuffled);
    }
    println!("\ngathered {} access records", db.len());

    // 4. Train the DRL engine and ask it about one file.
    let mut engine = DrlEngine::new(DrlConfig {
        train_window: 800,
        epochs: 40,
        smoothing_window: 8,
        ..DrlConfig::default()
    });
    let outcome = engine.retrain(&db).expect("enough telemetry");
    println!(
        "trained on {} samples; validation error {}",
        outcome.samples, outcome.validation_error
    );
    // Query the largest file — big transfers are bandwidth-bound, so the
    // per-mount differences are visible (small files are latency-bound).
    let file = workload
        .files()
        .iter()
        .max_by_key(|f| f.size)
        .expect("workload has files");
    let (now_secs, now_ms) = system.clock().now_secs_ms();
    let query = PlacementQuery {
        fid: file.fid,
        read_bytes: file.size,
        write_bytes: 0,
        now_secs,
        now_ms,
    };
    println!("\npredicted throughput for {} at each mount:", file.path);
    for (device, tp) in engine.rank_locations(&query, &system.online_devices()) {
        let name = system.device(device)?.name().to_string();
        println!("  {name:>7}: {:.2} GB/s", tp / 1e9);
    }

    // 5. Or drive the whole loop with the policy + control agent.
    let mut policy = GeomancyDynamic::with_config(
        DrlConfig {
            train_window: 800,
            epochs: 40,
            smoothing_window: 1,
            ..DrlConfig::default()
        },
        0.1,
    );
    let files: BTreeMap<FileId, FileMeta> = system.files().clone();
    let online = system.online_devices();
    let layout = system.layout();
    let free_bytes = system
        .devices()
        .iter()
        .map(|d| (d.id(), d.spec().capacity - d.used_bytes()))
        .collect();
    let ctx = PolicyContext {
        db: &db,
        files: &files,
        devices: &online,
        current_layout: &layout,
        lookback: 2_000,
        now: system.clock().now_secs_ms(),
        free_bytes,
    };
    if let Some(new_layout) = policy.update(&ctx) {
        let control = ControlAgent::new(None);
        let (moved, errors) = control.apply(&mut system, &new_layout);
        println!(
            "\nGeomancy moved {} files ({} errors):",
            moved.len(),
            errors.len()
        );
        for m in &moved {
            let from = system.device(m.from)?.name().to_string();
            let to = system.device(m.to)?.name().to_string();
            println!(
                "  {} {from} → {to} ({:.1} MB, {:.2} s)",
                m.fid,
                m.bytes as f64 / 1e6,
                m.cost_secs
            );
        }
        let on_file0 = system
            .layout()
            .values()
            .filter(|&&d| d == Mount::File0.device_id())
            .count();
        println!("files now on file0 (the fast RAID-5 mount): {on_file0}/24");
    } else {
        println!(
            "\nthis round's retrain was rejected by the divergence gate —\n\
             on a live deployment the data simply stays put until the next cycle"
        );
    }
    Ok(())
}
