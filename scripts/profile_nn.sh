#!/usr/bin/env bash
# Profile the NN kernel benchmark under `perf`, optionally rendering a
# flamegraph.
#
# Usage:
#   scripts/profile_nn.sh            # perf record + perf report (TUI)
#   scripts/profile_nn.sh --flame    # also emit target/nn_kernels_flame.svg
#                                    # (needs `inferno` or `flamegraph.pl`
#                                    # on PATH)
#   GEOMANCY_FORCE_SCALAR=1 scripts/profile_nn.sh
#                                    # profile the portable scalar backend
#
# The binary is built with debug symbols in release mode so perf can
# attribute samples to the individual kernels (matmul_panel_acc, the
# fused LSTM element-wise passes, …).

set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v perf >/dev/null 2>&1; then
    echo "error: perf not found on PATH (install linux-tools for your kernel)" >&2
    exit 1
fi

export CARGO_PROFILE_RELEASE_DEBUG=true
cargo build --release -p geomancy-bench --bin nn_kernels

BIN=target/release/nn_kernels
PERF_DATA=target/nn_kernels.perf.data

# Frame-pointer call graphs: the workspace builds with frame pointers on
# x86-64 by default; fall back to DWARF if the stacks look truncated.
perf record --call-graph fp -o "$PERF_DATA" -- "$BIN"

if [[ "${1:-}" == "--flame" ]]; then
    SVG=target/nn_kernels_flame.svg
    if command -v inferno-collapse-perf >/dev/null 2>&1; then
        perf script -i "$PERF_DATA" | inferno-collapse-perf | inferno-flamegraph > "$SVG"
    elif command -v stackcollapse-perf.pl >/dev/null 2>&1; then
        perf script -i "$PERF_DATA" | stackcollapse-perf.pl | flamegraph.pl > "$SVG"
    else
        echo "error: no flamegraph tool found (inferno-* or stackcollapse-perf.pl)" >&2
        exit 1
    fi
    echo "flamegraph written to $SVG"
else
    perf report -i "$PERF_DATA"
fi
