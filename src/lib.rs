//! # geomancy
//!
//! Facade crate for the Geomancy reproduction ("Geomancy: Automated
//! Performance Enhancement through Data Layout Optimization", ISPASS 2020):
//! re-exports the workspace crates under one roof and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! - [`core`] — DRL engine, Action Checker, placement policies, experiments
//! - [`nn`] — from-scratch neural networks (dense, SimpleRNN, LSTM, GRU)
//! - [`sim`] — the simulated Bluesky storage substrate
//! - [`trace`] — BELLE II / EOS workload and trace generators
//! - [`replaydb`] — the timestamp-indexed performance record store
//! - [`serve`] — sharded online placement service with batched queries
//!
//! See `examples/quickstart.rs` for the end-to-end loop.

#![warn(missing_docs)]

pub use geomancy_core as core;
pub use geomancy_nn as nn;
pub use geomancy_replaydb as replaydb;
pub use geomancy_serve as serve;
pub use geomancy_sim as sim;
pub use geomancy_trace as trace;
