//! Tier-1 connection-churn smoke: the full stack (placement service →
//! net server → client) survives repeated connect/query/disconnect
//! cycles with every transport gauge back at baseline afterwards. The
//! heavier 1,000-cycle soak and reconnect-storm tests live in
//! `crates/net/tests/churn.rs`; this keeps a smaller always-on version
//! in the default `cargo test` tier.

use std::sync::Arc;
use std::time::{Duration, Instant};

use geomancy_core::drl::DrlConfig;
use geomancy_net::{Client, ClientConfig, NetConfig, NetServer};
use geomancy_serve::{AdmissionConfig, PlacementRequest, PlacementService, ServeConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

/// 200 connect/query/disconnect cycles; afterwards the server reports
/// zero live connections, zero live writer actors, a retirement ledger
/// that accounts for every cycle, and a flat writer-slot slab.
#[test]
fn connection_churn_leaves_no_residue() {
    const CYCLES: usize = 200;
    let svc = Arc::new(PlacementService::start(ServeConfig {
        shards: 2,
        queue_capacity: 64,
        batch_window_micros: 0,
        max_batch: 32,
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            epochs: 10,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        admission: AdmissionConfig::default(),
        ..ServeConfig::default()
    }));
    for i in 0..300u64 {
        svc.ingest(i * 1_000_000, &[rec(i, i % 4)]).unwrap();
    }
    svc.retrain_now().unwrap();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&svc), NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    let config = ClientConfig {
        pool_size: 1,
        ..ClientConfig::default()
    };
    for i in 0..CYCLES {
        let c = Client::connect(addr, config.clone()).expect("connect");
        let ds = c
            .query_many(&[PlacementRequest {
                fid: FileId((i % 4) as u64),
                read_bytes: 1_000_000,
                write_bytes: 0,
            }])
            .expect("live server answers");
        assert_eq!(ds.len(), 1);
        drop(c);
    }

    // Every cycle read its reply, so every writer has spawned; now they
    // all have to finish retiring and hand their slots back.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = svc.metrics();
        if server.live_connections() == 0
            && server.live_writer_actors() == 0
            && m.pending_requests == 0
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "transport gauges never returned to baseline \
             (connections={}, writers={}, pending={})",
            server.live_connections(),
            server.live_writer_actors(),
            m.pending_requests,
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.retired_writers(), CYCLES as u64);
    assert!(
        server.writer_slot_capacity() <= 16,
        "writer slab leaked slots under churn: {}",
        server.writer_slot_capacity()
    );

    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}
