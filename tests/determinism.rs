//! Reproducibility: every stochastic component must be exactly
//! deterministic for a fixed seed — the property that makes the paper's
//! experiments regenerable.

use geomancy::core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy::core::experiment::{run_policy_experiment, ExperimentConfig};
use geomancy::core::policy::GeomancyDynamic;
use geomancy::core::ActionChecker;
use geomancy::nn::init::seeded_rng;
use geomancy::replaydb::ReplayDb;
use geomancy::sim::bluesky::bluesky_system;
use geomancy::sim::cluster::FileMeta;
use geomancy::sim::record::{DeviceId, FileId};
use geomancy::trace::belle2::Belle2Workload;
use geomancy::trace::eos::EosTraceGenerator;

fn tiny_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        warmup_accesses: 300,
        runs: 4,
        move_every_runs: 2,
        lookback: 600,
        transfer_budget: None,
        file_count: 6,
        inter_run_gap_secs: 2.0,
        early_retrain_on_drift: false,
    }
}

#[test]
fn full_geomancy_experiment_is_bitwise_deterministic() {
    let run = || {
        let mut policy = GeomancyDynamic::with_config(
            DrlConfig {
                train_window: 200,
                epochs: 8,
                smoothing_window: 4,
                seed: 5,
                ..DrlConfig::default()
            },
            0.1,
        );
        let result = run_policy_experiment(&mut policy, &tiny_config(5));
        (
            result.avg_throughput,
            result.series.len(),
            result
                .movements
                .iter()
                .map(|m| (m.at_access, m.files_moved))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn engine_training_is_deterministic() {
    let mut db = ReplayDb::new();
    let mut system = bluesky_system(8);
    let mut workload = Belle2Workload::with_params(8, 6, 0);
    for (i, f) in workload.files().iter().enumerate() {
        system
            .add_file(
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
                DeviceId((i % 6) as u32),
            )
            .unwrap();
    }
    for op in workload.next_run() {
        let rec = system.read_file(op.fid, op.bytes).unwrap();
        db.insert(system.clock().now_micros(), rec);
    }
    let rank = || {
        let mut engine = DrlEngine::new(DrlConfig {
            train_window: 200,
            epochs: 10,
            smoothing_window: 4,
            seed: 8,
            ..DrlConfig::default()
        });
        engine.retrain(&db).unwrap();
        engine.rank_locations(
            &PlacementQuery {
                fid: FileId(0),
                read_bytes: 1_000_000,
                write_bytes: 0,
                now_secs: 500,
                now_ms: 0,
            },
            &[DeviceId(0), DeviceId(1), DeviceId(2)],
        )
    };
    assert_eq!(rank(), rank());
}

#[test]
fn checker_decisions_replay_identically() {
    let ranked: Vec<(DeviceId, f64)> = (0..6).map(|i| (DeviceId(i), i as f64)).collect();
    let decide = || {
        let mut checker = ActionChecker::new(99);
        (0..100)
            .map(|_| checker.check(&ranked, |d| d.0 != 3).device)
            .collect::<Vec<_>>()
    };
    assert_eq!(decide(), decide());
}

#[test]
fn generators_are_deterministic_and_seed_sensitive() {
    let eos = |seed| EosTraceGenerator::new(seed).generate(50);
    assert_eq!(eos(1), eos(1));
    assert_ne!(eos(1), eos(2));

    let belle = |seed| Belle2Workload::new(seed).next_run();
    assert_eq!(belle(1), belle(1));
    assert_ne!(belle(1), belle(2));
}

#[test]
fn weight_initialization_is_deterministic() {
    use geomancy::core::models::{build_model, ModelId};
    let weights = |seed| {
        let mut rng = seeded_rng(seed);
        build_model(ModelId::new(1), 6, 8, &mut rng).export_weights()
    };
    assert_eq!(weights(3), weights(3));
    assert_ne!(weights(3), weights(4));
}

#[test]
fn simulator_noise_is_seeded() {
    let run = |seed| {
        let mut system = bluesky_system(seed);
        system
            .add_file(
                FileId(0),
                FileMeta {
                    size: 5_000_000,
                    path: "det.root".into(),
                },
                DeviceId(3),
            )
            .unwrap();
        (0..20)
            .map(|_| system.read_file(FileId(0), None).unwrap().throughput())
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
