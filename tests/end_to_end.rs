//! End-to-end integration: workload → simulator → monitoring agents →
//! interface daemon → ReplayDB → DRL engine → Action Checker → control
//! agent, exactly the paper's Figure 2 data flow.

use std::collections::BTreeMap;

use geomancy::core::daemon::InterfaceDaemon;
use geomancy::core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy::core::experiment::{run_policy_experiment, ExperimentConfig};
use geomancy::core::policy::{GeomancyDynamic, SpreadStatic};
use geomancy::core::ActionChecker;
use geomancy::replaydb::ReplayDb;
use geomancy::sim::agents::{ControlAgent, MonitoringAgent};
use geomancy::sim::bluesky::{bluesky_system, Mount};
use geomancy::sim::cluster::{FileMeta, Layout};
use geomancy::sim::record::{DeviceId, FileId};
use geomancy::trace::belle2::Belle2Workload;

fn tiny_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        warmup_accesses: 400,
        runs: 6,
        move_every_runs: 2,
        lookback: 800,
        transfer_budget: None,
        file_count: 8,
        inter_run_gap_secs: 2.0,
        early_retrain_on_drift: false,
    }
}

#[test]
fn figure2_data_flow_end_to_end() {
    let mut system = bluesky_system(3);
    let mut workload = Belle2Workload::with_params(3, 8, 0);
    for (i, f) in workload.files().iter().enumerate() {
        system
            .add_file(
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
                DeviceId((i % 6) as u32),
            )
            .unwrap();
    }
    let mut monitors: Vec<MonitoringAgent> = system
        .devices()
        .iter()
        .map(|d| MonitoringAgent::new(d.id(), 16))
        .collect();
    let daemon = InterfaceDaemon::spawn(ReplayDb::new());
    let client = daemon.client();

    for _ in 0..8 {
        for op in workload.next_run() {
            let record = if op.write {
                system.write_file(op.fid, op.bytes).unwrap()
            } else {
                system.read_file(op.fid, op.bytes).unwrap()
            };
            for agent in &mut monitors {
                if let Some(batch) = agent.observe(&record) {
                    client
                        .store_batch(system.clock().now_micros(), batch)
                        .unwrap();
                }
            }
        }
        system.idle(2.0);
    }
    for agent in &mut monitors {
        let rest = agent.drain();
        if !rest.is_empty() {
            client
                .store_batch(system.clock().now_micros(), rest)
                .unwrap();
        }
    }
    let observed: u64 = monitors.iter().map(|m| m.total_observed()).sum();
    assert_eq!(
        observed,
        system.access_count(),
        "every access observed exactly once"
    );
    assert_eq!(
        client.len().unwrap() as u64,
        observed,
        "every record reached the db"
    );

    // Engine trains from the daemon snapshot and proposes a layout.
    let snapshot = client.snapshot().unwrap();
    let mut engine = DrlEngine::new(DrlConfig {
        train_window: 300,
        epochs: 10,
        smoothing_window: 8,
        seed: 3,
        ..DrlConfig::default()
    });
    engine.retrain(&snapshot).expect("enough telemetry");
    let mut checker = ActionChecker::new(3);
    let (now_secs, now_ms) = system.clock().now_secs_ms();
    let online = system.online_devices();
    let mut layout = Layout::new();
    for f in workload.files() {
        let ranked = engine.rank_locations(
            &PlacementQuery {
                fid: f.fid,
                read_bytes: f.size,
                write_bytes: 0,
                now_secs,
                now_ms,
            },
            &online,
        );
        assert_eq!(ranked.len(), online.len(), "every device predicted");
        for (d, tp) in &ranked {
            assert!(
                tp.is_finite() && *tp >= 0.0,
                "bad prediction {tp} for {d}: {ranked:?}"
            );
        }
        let action = checker.check(&ranked, |d| {
            system
                .device(d)
                .map(|dev| dev.has_capacity_for(f.size))
                .unwrap_or(false)
        });
        layout.insert(f.fid, action.device);
    }
    let control = ControlAgent::new(None);
    let (moved, errors) = control.apply(&mut system, &layout);
    assert!(errors.is_empty(), "layout application errors: {errors:?}");
    // Every file must now be where the layout says.
    for (fid, device) in &layout {
        assert_eq!(system.location_of(*fid).unwrap(), *device);
    }
    // Movements recorded in the system ledger match the control agent's.
    assert_eq!(system.movements().len(), moved.len());
    let _ = daemon.shutdown();
}

#[test]
fn experiment_driver_is_deterministic_per_seed() {
    let run = |seed| {
        let mut policy = SpreadStatic::new();
        run_policy_experiment(&mut policy, &tiny_config(seed)).avg_throughput
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn geomancy_beats_pinning_everything_on_the_slowest_mount() {
    use geomancy::core::experiment::PinAll;
    let config = tiny_config(4);
    let mut pin = PinAll::new(Mount::UsbTmp);
    let pinned = run_policy_experiment(&mut pin, &config);
    let mut geomancy = GeomancyDynamic::with_config(
        DrlConfig {
            train_window: 300,
            epochs: 10,
            smoothing_window: 8,
            seed: 4,
            ..DrlConfig::default()
        },
        0.1,
    );
    let learned = run_policy_experiment(&mut geomancy, &config);
    assert!(
        learned.avg_throughput > pinned.avg_throughput,
        "Geomancy {:.3e} should beat all-on-USBtmp {:.3e}",
        learned.avg_throughput,
        pinned.avg_throughput
    );
}

#[test]
fn movement_clusters_stay_within_the_papers_cap() {
    let config = tiny_config(6);
    let mut geomancy = GeomancyDynamic::with_config(
        DrlConfig {
            train_window: 300,
            epochs: 8,
            smoothing_window: 8,
            seed: 6,
            ..DrlConfig::default()
        },
        0.1,
    );
    let result = run_policy_experiment(&mut geomancy, &config);
    for cluster in &result.movements {
        assert!(
            cluster.files_moved <= 14,
            "moved {} files in one decision (cap is 14)",
            cluster.files_moved
        );
    }
}

#[test]
fn usage_fractions_partition_the_accesses() {
    let config = tiny_config(8);
    let mut policy = SpreadStatic::new();
    let result = run_policy_experiment(&mut policy, &config);
    let total: f64 = result.usage_fraction.values().sum();
    assert!((total - 1.0).abs() < 1e-9, "usage fractions sum to {total}");
    // Spread layout with 8 files over 6 mounts touches at least 5 mounts.
    assert!(result.usage_fraction.len() >= 5);
}

#[test]
fn replaydb_snapshot_survives_round_trip_mid_experiment() {
    let mut db = ReplayDb::new();
    let mut system = bluesky_system(12);
    system
        .add_file(
            FileId(0),
            FileMeta {
                size: 10_000_000,
                path: "roundtrip.root".into(),
            },
            Mount::Tmp.device_id(),
        )
        .unwrap();
    for _ in 0..50 {
        let rec = system.read_file(FileId(0), None).unwrap();
        db.insert(system.clock().now_micros(), rec);
    }
    let json = geomancy::replaydb::to_json(&db).unwrap();
    let restored = geomancy::replaydb::from_json(&json).unwrap();
    assert_eq!(restored.len(), db.len());
    assert_eq!(
        restored.recent_for_device(Mount::Tmp.device_id(), 10),
        db.recent_for_device(Mount::Tmp.device_id(), 10)
    );
}

#[test]
fn policies_keep_files_within_device_capacity() {
    // A tiny system where one device cannot hold everything forces the
    // capacity validity path.
    let config = tiny_config(15);
    let mut geomancy = GeomancyDynamic::with_config(
        DrlConfig {
            train_window: 200,
            epochs: 6,
            smoothing_window: 4,
            seed: 15,
            ..DrlConfig::default()
        },
        0.0,
    );
    let result = run_policy_experiment(&mut geomancy, &config);
    // The run completing without panicking means no placement exceeded
    // capacity (the simulator panics on over-capacity placement); check the
    // run also produced data.
    assert!(!result.series.is_empty());
}

#[test]
fn files_metadata_consistent_between_workload_and_system() {
    let mut system = bluesky_system(1);
    let workload = Belle2Workload::new(1);
    let mut sizes = BTreeMap::new();
    for (i, f) in workload.files().iter().enumerate() {
        system
            .add_file(
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
                DeviceId((i % 6) as u32),
            )
            .unwrap();
        sizes.insert(f.fid, f.size);
    }
    for (fid, meta) in system.files() {
        assert_eq!(meta.size, sizes[fid]);
    }
    let used: u64 = system.devices().iter().map(|d| d.used_bytes()).sum();
    let total: u64 = sizes.values().sum();
    assert_eq!(used, total, "capacity accounting matches file sizes");
}
