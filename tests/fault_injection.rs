//! Fault injection: devices dropping offline mid-run, the Action Checker's
//! random fallback, and capacity exhaustion — §V-H's failure paths.

use std::collections::BTreeMap;

use geomancy::core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy::core::{ActionChecker, ActionKind, LocationRegistry};
use geomancy::replaydb::ReplayDb;
use geomancy::sim::bluesky::{bluesky_system, Mount};
use geomancy::sim::cluster::{FileMeta, Layout};
use geomancy::sim::record::{DeviceId, FileId};
use geomancy::sim::SimError;
use geomancy::trace::belle2::Belle2Workload;

/// Gathers telemetry with layout shuffles so the engine can train.
fn telemetry(
    system: &mut geomancy::sim::cluster::StorageSystem,
    runs: usize,
    seed: u64,
) -> ReplayDb {
    use rand::{Rng, SeedableRng};
    let mut workload = Belle2Workload::with_params(seed, 8, 0);
    for (i, f) in workload.files().iter().enumerate() {
        system
            .add_file(
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
                DeviceId((i % 6) as u32),
            )
            .unwrap();
    }
    let mut db = ReplayDb::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..runs {
        for op in workload.next_run() {
            let record = if op.write {
                system.write_file(op.fid, op.bytes).unwrap()
            } else {
                system.read_file(op.fid, op.bytes).unwrap()
            };
            db.insert(system.clock().now_micros(), record);
        }
        system.idle(2.0);
        let devices = system.online_devices();
        let layout: Layout = system
            .files()
            .keys()
            .map(|&fid| (fid, devices[rng.gen_range(0..devices.len())]))
            .collect();
        let _ = system.apply_layout(&layout);
    }
    db
}

#[test]
fn offline_device_rejects_moves_but_keeps_serving_nothing() {
    let mut system = bluesky_system(31);
    let _ = telemetry(&mut system, 2, 31);
    let victim = Mount::Pic.device_id();
    system.device_mut(victim).unwrap().set_online(false);
    // Moving anything to the offline device fails cleanly.
    let some_file = *system.files().keys().next().unwrap();
    if system.location_of(some_file).unwrap() != victim {
        assert_eq!(
            system.move_file(some_file, victim),
            Err(SimError::DeviceOffline(victim))
        );
    }
    // The registry stops offering it.
    let registry = LocationRegistry::refresh(&system);
    assert!(!registry.candidates_for(1).contains(&victim));
    assert_eq!(system.online_devices().len(), 5);
}

#[test]
fn action_checker_falls_back_when_every_device_is_invalid() {
    let mut checker = ActionChecker::new(0);
    let ranked: Vec<(DeviceId, f64)> = (0..6).map(|i| (DeviceId(i), 100.0 * i as f64)).collect();
    let action = checker.check(&ranked, |_| false);
    assert_eq!(action.kind, ActionKind::RandomFallback);
    // The fallback still lands on a known device.
    assert!(ranked.iter().any(|(d, _)| *d == action.device));
}

#[test]
fn engine_routes_around_offline_devices() {
    let mut system = bluesky_system(32);
    let db = telemetry(&mut system, 5, 32);
    let mut engine = DrlEngine::new(DrlConfig {
        train_window: 500,
        epochs: 15,
        smoothing_window: 8,
        seed: 32,
        ..DrlConfig::default()
    });
    engine.retrain(&db).expect("telemetry suffices");
    // file0 goes down; the candidate set excludes it.
    system
        .device_mut(Mount::File0.device_id())
        .unwrap()
        .set_online(false);
    let online = system.online_devices();
    assert!(!online.contains(&Mount::File0.device_id()));
    let (now_secs, now_ms) = system.clock().now_secs_ms();
    let ranked = engine.rank_locations(
        &PlacementQuery {
            fid: FileId(0),
            read_bytes: 10_000_000,
            write_bytes: 0,
            now_secs,
            now_ms,
        },
        &online,
    );
    assert_eq!(ranked.len(), 5);
    assert!(ranked.iter().all(|(d, _)| *d != Mount::File0.device_id()));
}

#[test]
fn capacity_exhaustion_surfaces_as_insufficient_capacity() {
    let mut system = bluesky_system(33);
    // USBtmp holds 1 TB; a 2 TB file cannot land there.
    system
        .add_file(
            FileId(0),
            FileMeta {
                size: 2_000_000_000_000,
                path: "huge.root".into(),
            },
            Mount::File0.device_id(),
        )
        .unwrap();
    assert!(matches!(
        system.move_file(FileId(0), Mount::UsbTmp.device_id()),
        Err(SimError::InsufficientCapacity { .. })
    ));
}

#[test]
fn device_recovery_restores_candidates() {
    let mut system = bluesky_system(34);
    let victim = Mount::Var.device_id();
    system.device_mut(victim).unwrap().set_online(false);
    assert_eq!(system.online_devices().len(), 5);
    system.device_mut(victim).unwrap().set_online(true);
    assert_eq!(system.online_devices().len(), 6);
    let registry = LocationRegistry::refresh(&system);
    assert!(registry.candidates_for(1).contains(&victim));
}

#[test]
fn gap_scheduler_defers_moves_for_hot_files() {
    use geomancy::core::{GapScheduler, ScheduledMove};
    let mut system = bluesky_system(35);
    let db = telemetry(&mut system, 3, 35);
    let scheduler = GapScheduler::default();
    let predictions = scheduler.predict_gaps(&db, 5_000);
    assert!(
        !predictions.is_empty(),
        "gap stats exist for accessed files"
    );
    // A move that takes far longer than any inter-access gap must defer.
    let moves: Vec<ScheduledMove> = predictions
        .keys()
        .take(3)
        .map(|&fid| ScheduledMove {
            fid,
            to: Mount::UsbTmp.device_id(),
            estimated_secs: 1e9,
        })
        .collect();
    let now = system.clock().now_secs();
    let (ready, deferred) = scheduler.schedule(&moves, &predictions, now);
    assert!(ready.is_empty());
    assert_eq!(deferred.len(), moves.len());
}

#[test]
fn registry_layout_tracks_moves() {
    let mut system = bluesky_system(36);
    system
        .add_file(
            FileId(7),
            FileMeta {
                size: 1_000_000,
                path: "tracked.root".into(),
            },
            Mount::Tmp.device_id(),
        )
        .unwrap();
    let mut registry = LocationRegistry::refresh(&system);
    assert_eq!(
        registry.location_of(FileId(7)),
        Some(Mount::Tmp.device_id())
    );
    system
        .move_file(FileId(7), Mount::File0.device_id())
        .unwrap();
    registry.record_layout(&system.layout());
    assert_eq!(
        registry.location_of(FileId(7)),
        Some(Mount::File0.device_id())
    );
}

#[test]
fn chunked_migration_interoperates_with_live_reads() {
    use geomancy::sim::{ChunkedMigration, MigrationState};
    let mut system = bluesky_system(37);
    system
        .add_file(
            FileId(0),
            FileMeta {
                size: 200_000_000,
                path: "big/incremental.root".into(),
            },
            Mount::UsbTmp.device_id(),
        )
        .unwrap();
    let mut migration =
        ChunkedMigration::start(&mut system, FileId(0), Mount::File0.device_id(), 50_000_000)
            .unwrap();
    let mut reads = 0;
    while migration.state() == MigrationState::InProgress {
        let _ = migration.step(&mut system).unwrap();
        // Reads interleave with the copy and keep hitting the source until
        // the flip.
        if migration.state() == MigrationState::InProgress {
            let rec = system.read_file(FileId(0), Some(1_000_000)).unwrap();
            assert_eq!(rec.fsid, Mount::UsbTmp.device_id());
            reads += 1;
        }
    }
    assert!(reads > 0);
    assert_eq!(
        system.location_of(FileId(0)).unwrap(),
        Mount::File0.device_id()
    );
    let rec = system.read_file(FileId(0), Some(1_000_000)).unwrap();
    assert_eq!(rec.fsid, Mount::File0.device_id());
}

#[test]
fn checkpointed_engine_model_survives_restart() {
    use geomancy::nn::activation::Activation;
    use geomancy::nn::{LayerSpec, NetworkSpec};
    // Simulate persisting a trained placement model across a restart: the
    // spec mirrors model 4 over the placement features.
    let spec = NetworkSpec::new(vec![
        LayerSpec::Dense {
            input: 6,
            output: 96,
            activation: Activation::ReLU,
        },
        LayerSpec::Dense {
            input: 96,
            output: 48,
            activation: Activation::ReLU,
        },
        LayerSpec::Dense {
            input: 48,
            output: 1,
            activation: Activation::Linear,
        },
    ]);
    let mut rng = geomancy::nn::init::seeded_rng(9);
    let mut net = spec.build(&mut rng);
    let x = geomancy::nn::Matrix::filled(4, 6, 0.3);
    let before = net.predict(&x);
    let json = spec.checkpoint(&net).to_json().unwrap();
    let mut restored = geomancy::nn::Checkpoint::from_json(&json)
        .unwrap()
        .restore();
    let after = restored.predict(&x);
    for (a, b) in after.as_slice().iter().zip(before.as_slice()) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn free_bytes_in_context_reflect_offline_state() {
    // Building a policy context against a degraded system must still be
    // consistent: offline devices simply vanish from the candidate list.
    let mut system = bluesky_system(38);
    let db = telemetry(&mut system, 2, 38);
    system
        .device_mut(Mount::Pic.device_id())
        .unwrap()
        .set_online(false);
    let files: BTreeMap<FileId, FileMeta> = system.files().clone();
    let online = system.online_devices();
    let layout = system.layout();
    let ctx = geomancy::core::PolicyContext {
        db: &db,
        files: &files,
        devices: &online,
        current_layout: &layout,
        lookback: 1000,
        now: system.clock().now_secs_ms(),
        free_bytes: system
            .devices()
            .iter()
            .map(|d| (d.id(), d.spec().capacity - d.used_bytes()))
            .collect(),
    };
    use geomancy::core::{Lfu, PlacementPolicy};
    let new_layout = Lfu.update(&ctx).unwrap();
    assert!(new_layout.values().all(|d| *d != Mount::Pic.device_id()));
}
