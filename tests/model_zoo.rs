//! The full Table I model zoo: every architecture builds, trains briefly on
//! live-system telemetry, and stays numerically sane.

use geomancy::core::dataset::forecasting_dataset;
use geomancy::core::models::{build_model, ModelId};
use geomancy::nn::init::seeded_rng;
use geomancy::nn::loss::Loss;
use geomancy::nn::optimizer::Sgd;
use geomancy::nn::training::{train, DataSplit, TrainConfig};
use geomancy::sim::bluesky::{bluesky_system, Mount};
use geomancy::sim::cluster::FileMeta;
use geomancy::sim::record::{AccessRecord, FileId};
use geomancy::trace::features::Z;

const TIMESTEPS: usize = 4;

/// A few hundred records from the quiet USBtmp mount (low noise so short
/// training runs converge).
fn usbtmp_records(n: usize) -> Vec<AccessRecord> {
    let mut system = bluesky_system(9);
    system
        .add_file(
            FileId(0),
            FileMeta {
                size: 40_000_000,
                path: "zoo/data.root".into(),
            },
            Mount::UsbTmp.device_id(),
        )
        .unwrap();
    (0..n)
        .map(|_| system.read_file(FileId(0), None).unwrap())
        .collect()
}

#[test]
fn every_table1_model_trains_without_numerical_blowup() {
    let records = usbtmp_records(300);
    let dense = forecasting_dataset(&records, 1, 8, 0);
    let windowed = forecasting_dataset(&records, TIMESTEPS, 8, 0);
    for id in ModelId::all() {
        let ds = if id.is_recurrent() { &windowed } else { &dense };
        let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());
        let mut rng = seeded_rng(id.number() as u64);
        let mut net = build_model(id, Z, TIMESTEPS, &mut rng);
        let mut opt = Sgd::new(0.02);
        let report = train(
            &mut net,
            &mut opt,
            &split,
            &TrainConfig {
                epochs: 15,
                batch_size: 32,
                loss: Loss::MeanSquaredError,
                patience: None,
            },
        );
        // Training loss must be finite for every architecture; divergence
        // (constant predictions) is allowed — the paper observes it — but
        // NaN/Inf is a bug.
        for (e, loss) in report.epoch_losses.iter().enumerate() {
            assert!(
                loss.is_finite(),
                "{id} produced non-finite loss at epoch {e}"
            );
        }
        assert!(report.epochs_run == 15, "{id} stopped early unexpectedly");
    }
}

#[test]
fn model_1_beats_the_constant_predictor_on_quiet_data() {
    let records = usbtmp_records(400);
    let ds = forecasting_dataset(&records, 1, 8, 0);
    let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());
    let mut rng = seeded_rng(1);
    let mut net = build_model(ModelId::new(1), Z, TIMESTEPS, &mut rng);
    let mut opt = Sgd::new(0.05);
    let report = train(
        &mut net,
        &mut opt,
        &split,
        &TrainConfig {
            epochs: 120,
            batch_size: 32,
            loss: Loss::MeanSquaredError,
            patience: None,
        },
    );
    assert!(!report.diverged, "model 1 diverged on the quiet mount");
    // Constant-mean predictor baseline on the test partition.
    let mean = split.train.1.mean();
    let mse_const = split
        .test
        .1
        .as_slice()
        .iter()
        .map(|t| (t - mean) * (t - mean))
        .sum::<f64>()
        / split.test.1.len() as f64;
    let pred = net.predict(&split.test.0);
    let mse_model = Loss::MeanSquaredError.compute(&pred, &split.test.1);
    assert!(
        mse_model < mse_const,
        "model MSE {mse_model:.4} not better than constant predictor {mse_const:.4}"
    );
}

#[test]
fn recurrent_models_accept_windowed_input_only() {
    let records = usbtmp_records(100);
    let windowed = forecasting_dataset(&records, TIMESTEPS, 4, 0);
    for n in [12u8, 13, 14] {
        let id = ModelId::new(n);
        let mut rng = seeded_rng(n as u64);
        let mut net = build_model(id, Z, TIMESTEPS, &mut rng);
        assert_eq!(net.input_size(), Some(TIMESTEPS * Z), "{id}");
        let out = net.predict(&windowed.inputs.slice_rows(0..4));
        assert_eq!(out.shape(), (4, 1));
    }
}

#[test]
fn table1_descriptions_are_scale_correct() {
    // Spot-check that the Z-scaling in the built networks matches Table I.
    let mut rng = seeded_rng(0);
    let m6 = build_model(ModelId::new(6), 6, 4, &mut rng);
    assert!(m6
        .describe()
        .starts_with("96 (Dense) ReLU, 96 (Dense) ReLU"));
    let m17 = build_model(ModelId::new(17), 6, 4, &mut rng);
    assert_eq!(
        m17.describe(),
        "6 (GRU) ReLU, 24 (Dense) ReLU, 6 (Dense) ReLU, 1 (Dense) Linear"
    );
}
